//! Discover micro-architectural parameters with the §IV probe framework.
//!
//! ```sh
//! cargo run --release --example discover_uarch
//! ```
//!
//! Mirrors the paper's Figure 6 usage: build an `InstructionSequence` with
//! a CYCLE dependence DAG, wrap it in a `StraightLineLoop`, execute the
//! `Benchmark` in isolation, and infer the latency from `CPU_CYCLES` — then
//! run the higher-level probes that find the loop-buffer window and the
//! branch predictor's `PC >> k` index shift.

use mao_probe::{
    detect_lsd_window, detect_predictor_shift, instruction_latency, Benchmark, DagType,
    InstructionSequence, InstructionTemplate, Processor, StraightLineLoop,
};

fn main() {
    let proc = Processor::core2();

    // The Figure 6 procedure, spelled out.
    let mut seq = InstructionSequence::new(&proc);
    seq.set_instruction_template(InstructionTemplate::parse("imull %r, %r").expect("valid"))
        .set_dag_type(DagType::Cycle)
        .set_length(16)
        .generate(&proc);
    let loop_list = vec![StraightLineLoop::new(vec![seq]).with_trip_count(5_000)];
    let bench = Benchmark::new(loop_list);
    let results = bench
        .execute(&proc, &[Processor::CPU_CYCLES])
        .expect("benchmark executes");
    println!(
        "imull chain: {} cycles over {} dynamic instructions",
        results[Processor::CPU_CYCLES],
        bench.num_dynamic_instructions()
    );

    // The same procedure packaged as in the paper's InstructionLatency().
    for template in ["addl %r, %r", "imull %r, %r", "movl %r, %r"] {
        let latency = instruction_latency(&proc, template).expect("probe runs");
        println!("latency({template}) = {latency} cycle(s)");
    }

    // Semi-automatic feature discovery on both simulated processors.
    for proc in [Processor::core2(), Processor::opteron()] {
        let window = detect_lsd_window(&proc).expect("probe runs");
        let shift = detect_predictor_shift(&proc).expect("probe runs");
        println!(
            "{}: loop buffer holds {} decode line(s); branch predictor indexed by PC>>{shift}",
            proc.name, window
        );
    }
}
