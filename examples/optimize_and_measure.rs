//! Optimize a hot kernel and *measure* the effect on the simulated
//! micro-architecture — the full MAO workflow from the paper's evaluation.
//!
//! ```sh
//! cargo run --release --example optimize_and_measure
//! ```
//!
//! Takes the §III.F hashing kernel in its slow schedule, measures it on the
//! Core-2-like model (cycles + the `RESOURCE_STALLS:RS_FULL` counter the
//! paper used to diagnose it), lets the SCHED pass reorder the block, and
//! measures again.

use mao::pass::{parse_invocations, run_pipeline};
use mao::MaoUnit;
use mao_corpus::kernels::hashing;
use mao_sim::{simulate, SimOptions, UarchConfig};

fn main() {
    let config = UarchConfig::core2();
    let workload = hashing(false, 100_000); // the forwarding-hostile order

    let unit = MaoUnit::parse(&workload.asm).expect("kernel parses");
    let before = simulate(&unit, &workload.entry, &[], &config, &SimOptions::default())
        .expect("kernel runs");
    println!(
        "before SCHED: {} cycles, ipc {:.2}, RS_FULL stalls {}",
        before.pmu.cycles,
        before.pmu.ipc(),
        before.pmu.rs_full_stalls
    );

    let mut optimized = unit.clone();
    let report = run_pipeline(
        &mut optimized,
        &parse_invocations("SCHED").expect("valid"),
        None,
    )
    .expect("SCHED runs");
    println!(
        "SCHED moved {} instruction(s)",
        report
            .stats("SCHED")
            .map(|s| s.transformations)
            .unwrap_or(0)
    );

    let after = simulate(
        &optimized,
        &workload.entry,
        &[],
        &config,
        &SimOptions::default(),
    )
    .expect("kernel runs");
    println!(
        "after SCHED:  {} cycles, ipc {:.2}, RS_FULL stalls {}",
        after.pmu.cycles,
        after.pmu.ipc(),
        after.pmu.rs_full_stalls
    );

    assert_eq!(before.ret, after.ret, "scheduling preserves results");
    let speedup =
        (before.pmu.cycles as f64 - after.pmu.cycles as f64) / before.pmu.cycles as f64 * 100.0;
    println!("speedup: {speedup:+.1}%  (paper: 15% on this kernel, diagnosed via RS_FULL)");
}
