//! Umbrella crate for the MAO reproduction workspace.
//!
//! Re-exports the public crates so the `examples/` and `tests/` at the
//! workspace root can use a single dependency.
pub use mao;
pub use mao_asm;
pub use mao_corpus;
pub use mao_probe;
pub use mao_sim;
pub use mao_x86;
